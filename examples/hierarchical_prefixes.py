"""Hierarchical heavy hitters: find the heavy *subnets*, not just flows.

A DDoS source, a misbehaving rack, or a scanning botnet often shows up
as a heavy /16 or /24 even when no single source address is heavy.
This example streams synthetic traffic containing (a) one genuinely
heavy host and (b) a diffuse /24 whose 200 hosts are individually cold,
then queries the per-level SALSA sketches for every prefix above 5%.

Run:  python examples/hierarchical_prefixes.py
"""

import random

from repro.core import SalsaCountMin
from repro.tasks import HierarchicalHeavyHitters, dotted


def main() -> None:
    hhh = HierarchicalHeavyHitters(
        lambda level: SalsaCountMin.for_memory(16 * 1024, d=4, s=8,
                                               seed=level))
    rng = random.Random(7)

    heavy_host = 0xC6336401            # 198.51.100.1
    botnet_base = 0xCB007100           # 203.0.113.0/24

    for _ in range(30_000):
        roll = rng.random()
        if roll < 0.12:
            address = heavy_host                       # 12%: one host
        elif roll < 0.30:
            address = botnet_base | rng.randrange(200)  # 18%: diffuse /24
        else:
            address = rng.getrandbits(32)               # background
        hhh.update(address)

    print(f"streamed {hhh.n:,} packets; memory "
          f"{hhh.memory_bytes // 1024}KB across {len(hhh.levels)} levels\n")
    print(f"{'prefix':>20} {'share':>7}")
    for prefix, bits, estimate in hhh.query(phi=0.05):
        print(f"{dotted(prefix, bits):>20} {estimate / hhh.n:>6.1%}")

    print("\nThe heavy host surfaces all the way to /32; the botnet's "
          "/24 surfaces\nwhile its individual hosts (~0.09% each) stay "
          "below every threshold.")


if __name__ == "__main__":
    main()
