"""Lp sampling over SALSA Count Sketch.

The paper's conclusion proposes SALSA inside Lp-samplers [50].  An L2
sampler draws a random flow with probability proportional to its
*squared* frequency -- useful for variance-weighted telemetry export,
where you want to inspect packets of flows that dominate F2 (e.g. for
DDoS forensics) without tracking every flow exactly.

This example runs many independent L2 samplers over the same skewed
stream and compares the empirical sampling rates with the true
f^2 / F2 distribution, then contrasts against L1 sampling rates.

Run:  python examples/lp_sampling.py
"""

import collections

from repro import zipf_trace
from repro.core import l1_sampler, l2_sampler

SAMPLERS = 120
STREAM = 3_000


def empirical_rates(make_sampler) -> collections.Counter:
    """Sampling rates across independent sampler instances."""
    wins: collections.Counter = collections.Counter()
    for seed in range(SAMPLERS):
        sampler = make_sampler(seed)
        for x in zipf_trace(STREAM, 1.2, universe=1_000, seed=99):
            sampler.update(x)
        wins[sampler.sample()] += 1
    return wins


def main() -> None:
    trace = zipf_trace(STREAM, 1.2, universe=1_000, seed=99)
    freq = trace.frequencies()
    f1 = sum(freq.values())
    f2 = sum(f * f for f in freq.values())
    top = sorted(freq, key=freq.get, reverse=True)[:5]

    l2_wins = empirical_rates(
        lambda s: l2_sampler(w=1024, d=5, seed=s, candidates=32))
    l1_wins = empirical_rates(
        lambda s: l1_sampler(w=1024, d=5, seed=s, candidates=32))

    print(f"{SAMPLERS} independent samplers over a skew-1.2 stream "
          f"({len(freq)} flows)\n")
    print(f"{'flow':>8} {'f':>6} {'f/F1':>7} {'L1 rate':>8} "
          f"{'f^2/F2':>7} {'L2 rate':>8}")
    for x in top:
        f = freq[x]
        print(f"{x:>8} {f:>6} {f / f1:>7.3f} "
              f"{l1_wins[x] / SAMPLERS:>8.3f} "
              f"{f * f / f2:>7.3f} {l2_wins[x] / SAMPLERS:>8.3f}")

    heaviest = top[0]
    print(f"\nThe heaviest flow holds {freq[heaviest] / f1:.1%} of the "
          f"volume but {freq[heaviest] ** 2 / f2:.1%} of F2 -- the L2 "
          "sampler picks it accordingly,\nwhich is exactly the bias a "
          "variance-weighted exporter wants.")


if __name__ == "__main__":
    main()
