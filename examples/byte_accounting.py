"""Byte accounting: weighted-frequency estimation.

Section IV notes practitioners "allocate ... 64-bit counters for
measuring weighted-frequency (e.g. byte counts)".  That is exactly
where fixed-width counters hurt most: a 64-bit-per-cell CMS fits 8x
fewer counters than SALSA's 8-bit cells, yet almost every flow's byte
count fits in far fewer bits.

This example weights a skewed packet stream with realistic (bimodal)
packet sizes and compares byte-count estimates from a 64-bit baseline
CMS and a SALSA CMS at the same memory budget.

Run:  python examples/byte_accounting.py
"""

from repro import CountMinSketch, SalsaCountMin, zipf_trace
from repro.streams import packet_size_weights

MEMORY = 32 * 1024
STREAM = 100_000


def main() -> None:
    packets = zipf_trace(STREAM, skew=1.1, universe=30_000, seed=11)
    stream = packet_size_weights(packets, seed=11)

    baseline = CountMinSketch.for_memory(MEMORY, d=4, counter_bits=64, seed=2)
    salsa = SalsaCountMin.for_memory(MEMORY, d=4, s=8, seed=2)
    print(f"memory budget {MEMORY // 1024}KB:")
    print(f"  64-bit baseline: {baseline.w} counters/row")
    print(f"  SALSA (s=8):     {salsa.w} counters/row "
          f"({salsa.w / baseline.w:.1f}x)")

    truth: dict[int, int] = {}
    for item, size in stream:
        baseline.update(item, size)
        salsa.update(item, size)
        truth[item] = truth.get(item, 0) + size

    total_bytes = sum(truth.values())
    print(f"\nstream: {STREAM:,} packets, {total_bytes / 1e6:.1f} MB, "
          f"{len(truth):,} flows")

    heavy = sorted(truth, key=truth.get, reverse=True)[:8]
    print(f"\n{'flow':>8} {'true bytes':>12} {'baseline':>12} {'SALSA':>12}")
    for x in heavy:
        print(f"{x:>8} {truth[x]:>12,} {baseline.query(x):>12,} "
              f"{salsa.query(x):>12,}")

    base_err = sum(baseline.query(x) - b for x, b in truth.items())
    salsa_err = sum(salsa.query(x) - b for x, b in truth.items())
    print(f"\ntotal over-estimation [bytes]: baseline={base_err:,}  "
          f"SALSA={salsa_err:,}  ({base_err / max(1, salsa_err):.1f}x less)")
    merges = sum(row.merge_events for row in salsa.rows)
    print(f"SALSA merges: {merges}; byte counts this large still fit -- "
          "counters grow exactly where the elephants are.")


if __name__ == "__main__":
    main()
