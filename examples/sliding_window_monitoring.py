"""Sliding-window monitoring: recent-traffic heavy hitters.

A long-lived monitor usually cares about *recent* traffic, not the
stream since boot -- and a long-lived SALSA sketch would also
accumulate stale wide counters.  :class:`repro.core.WindowedSketch`
solves both with epoch rotation: two resident sketches, queries cover
the last 1-2 epochs, retired epochs free their merges.

This example simulates a traffic shift (flow A dominates, then flow B
takes over) and shows the windowed sketch forgetting A while an
unwindowed sketch keeps reporting it forever.

Run:  python examples/sliding_window_monitoring.py
"""

from repro import SalsaCountMin, zipf_trace
from repro.core import WindowedSketch

EPOCH = 30_000


def fresh():
    return SalsaCountMin.for_memory(8 * 1024, d=4, s=8, seed=5)


def main() -> None:
    windowed = WindowedSketch(fresh, epoch=EPOCH)
    unwindowed = fresh()

    flow_a, flow_b = 10_000_001, 10_000_002

    def feed(phase: str, hot: int, background_seed: int) -> None:
        """One phase: `hot` takes ~20% of the traffic."""
        noise = iter(zipf_trace(EPOCH, 1.0, universe=50_000,
                                seed=background_seed))
        for i in range(EPOCH):
            item = hot if i % 5 == 0 else next(noise)
            windowed.update(item)
            unwindowed.update(item)
        print(f"{phase}: window now spans {windowed.window_span} updates, "
              f"{windowed.rotations} rotations")
        print(f"  flow A: windowed={windowed.query(flow_a):>6.0f}   "
              f"all-time={unwindowed.query(flow_a):>6.0f}")
        print(f"  flow B: windowed={windowed.query(flow_b):>6.0f}   "
              f"all-time={unwindowed.query(flow_b):>6.0f}")

    feed("phase 1 (A hot)", flow_a, background_seed=1)
    feed("phase 2 (A hot)", flow_a, background_seed=2)
    feed("phase 3 (B hot)", flow_b, background_seed=3)
    feed("phase 4 (B hot)", flow_b, background_seed=4)

    print("\nAfter the shift, the windowed sketch reports flow A near 0 "
          "while the\nall-time sketch still carries its full history -- "
          "and the windowed memory\nstays bounded at two sketches "
          f"({windowed.memory_bytes:,} bytes).")


if __name__ == "__main__":
    main()
