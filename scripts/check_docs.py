#!/usr/bin/env python
"""Execute every fenced ``python`` block in ``docs/*.md``.

Documentation in this repo is executable by contract: each markdown
file's ``python`` fences run sequentially in one fresh namespace (they
may build on each other, as a reader would type them).  CI-style usage:

    PYTHONPATH=src python scripts/check_docs.py [docs_dir ...]

Exits non-zero on the first failing block, printing the file, block
index, and the block source.  ``text`` fences (shell transcripts) are
ignored.
"""

from __future__ import annotations

import glob
import os
import re
import sys

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def python_blocks(path: str) -> list[str]:
    with open(path) as fh:
        return _FENCE.findall(fh.read())


def run_file(path: str) -> int:
    """Run one markdown file's blocks; return the number executed."""
    namespace: dict = {}
    blocks = python_blocks(path)
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"<{os.path.basename(path)} block {i}>",
                         "exec"), namespace)
        except Exception as exc:
            print(f"FAIL {path} block {i}: {exc!r}\n---\n{block}---",
                  file=sys.stderr)
            raise SystemExit(1)
    return len(blocks)


def main(argv: list[str] | None = None) -> int:
    dirs = (argv if argv else None) or [os.path.join(_REPO_ROOT, "docs")]
    # Make `import repro` work without installation.
    src = os.path.join(_REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    total = 0
    for directory in dirs:
        paths = sorted(glob.glob(os.path.join(directory, "*.md")))
        if not paths:
            print(f"FAIL no markdown files under {directory}",
                  file=sys.stderr)
            return 1
        for path in paths:
            count = run_file(path)
            total += count
            print(f"ok {path}: {count} block(s)")
    print(f"all {total} python block(s) executed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
